"""Fail-slow (gray-failure) campaign + tail-latency bound check.

Answers the question the hedging datapath exists for: *with one device
silently degraded — answering every command, just slowly — does the
array still serve reads at roughly healthy tail latency, and is every
acknowledged byte still correct?*

Three campaigns run against the same seeded mixed workload:

1. **healthy** — no fault injected, fail-slow protection enabled: the
   baseline read-latency distribution (and evidence the defense is free
   when nothing is wrong).
2. **hedged** — a :class:`~repro.faults.failslow.SlowPlan` makes one
   device persistently slower with intermittent multi-millisecond
   stalls; protection is enabled, so stragglers are raced against
   parity reconstruction, the device is demoted, and past the score
   threshold evicted into the standard rebuild flow.
3. **unhedged** — same fault, protection disabled: what an undefended
   array suffers, demonstrating the defense matters.

The harness asserts the paper-style tail bound: hedged p999 read
latency ≤ ``HEDGED_BOUND``× the healthy p999 while unhedged p999 is
≥ ``UNHEDGED_BOUND``× — and that the integrity oracle (inline read
verification plus a full read-back of every acknowledged byte) reports
zero violations in all three runs.

Run via ``python -m repro slowtest [--quick]``; emits a JSON report and
the committed ``BENCH_tail.json`` numbers.  Fixed seed ⇒ bit-identical
report (minus wall-clock timing).
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from typing import Dict, List, Optional

from ..block.bio import Bio
from ..faults.devicefail import fresh_replacement
from ..faults.failslow import SlowDeviceSpec, SlowPlan
from ..raizn.config import RaiznConfig
from ..raizn.maintenance import run_health_maintenance
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..sim.stats import LatencyStats
from ..units import KiB, MiB
from ..zns.device import ZNSDevice

#: Array geometry (same scale as the errortest campaign).
NUM_DEVICES = 5
NUM_ZONES = 12
ZONE_CAPACITY = 1 * MiB
STRIPE_UNIT = 64 * KiB
#: Zones pre-filled before the fault arms; mixed-phase reads hit these.
WORKLOAD_ZONES = 3
ARRAY_UUID = bytes(range(16))

#: The gray-failing device.
SLOW_DEVICE = 1
#: Acceptance bounds on p999(fail-slow) / p999(healthy).
HEDGED_BOUND = 3.0
UNHEDGED_BOUND = 10.0


def _slow_spec() -> SlowDeviceSpec:
    """The campaign's gray failure: persistently 3x slower with
    intermittent 10 ms stalls on 15 % of commands."""
    return SlowDeviceSpec(device_index=SLOW_DEVICE, degrade_factor=3.0,
                          stall_probability=0.15, stall_seconds=10e-3)


class _ZoneModel:
    """Expected contents of one logical zone (what the array acked)."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, payload: bytes) -> None:
        self.data.extend(payload)

    def reset(self) -> None:
        self.data = bytearray()


class CampaignReport:
    """One variant's counters and latency distribution."""

    def __init__(self, name: str, seed: int, protection: bool,
                 injected: bool):
        self.name = name
        self.seed = seed
        self.protection = protection
        self.injected = injected
        self.reads = 0
        self.writes = 0
        self.read_latency = LatencyStats()
        self.health: Dict = {}
        self.device_health: List[Dict] = []
        self.slow_counts: Dict = {}
        self.sweep: Dict = {}
        self.corruptions = 0
        self.violations: List[Dict] = []
        self.verified_bytes = 0

    def corruption(self, phase: str, zone: int, offset: int,
                   length: int) -> None:
        self.corruptions += 1
        if len(self.violations) < 20:
            self.violations.append({"phase": phase, "zone": zone,
                                    "offset": offset, "length": length})

    def latency_ms(self) -> Dict[str, float]:
        pcts = self.read_latency.percentiles((50.0, 99.0, 99.9))
        return {
            "p50_ms": round(pcts[50.0] * 1e3, 4),
            "p99_ms": round(pcts[99.0] * 1e3, 4),
            "p999_ms": round(pcts[99.9] * 1e3, 4),
            "max_ms": round(self.read_latency.maximum * 1e3, 4),
            "mean_ms": round(self.read_latency.mean * 1e3, 4),
        }

    def digest(self) -> str:
        """Sample-exact fingerprint: same seed must reproduce it."""
        fingerprint = hashlib.sha256()
        for sample in self.read_latency._samples:
            fingerprint.update(str(round(sample * 1e9)).encode())
        return fingerprint.hexdigest()[:16]

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "protection": self.protection,
            "injected": self.injected,
            "reads": self.reads,
            "writes": self.writes,
            "read_latency": self.latency_ms(),
            "latency_digest": self.digest(),
            "health": self.health,
            "device_health": self.device_health,
            "slow_counts": self.slow_counts,
            "sweep": self.sweep,
            "verified_bytes": self.verified_bytes,
            "corruptions": self.corruptions,
            "violations": self.violations,
        }


def _fresh_array(seed: int, protection: bool):
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=NUM_ZONES,
                         zone_capacity=ZONE_CAPACITY, seed=seed + i)
               for i in range(NUM_DEVICES)]
    config = RaiznConfig(num_data=NUM_DEVICES - 1,
                         stripe_unit_bytes=STRIPE_UNIT,
                         failslow_protection=protection)
    volume = RaiznVolume.create(sim, devices, config, array_uuid=ARRAY_UUID)
    return sim, devices, volume


def _fill_zones(sim: Simulator, volume: RaiznVolume, seed: int,
                model: List[_ZoneModel]):
    """Fill and finish the workload zones with seeded data (process)."""
    su = volume.config.stripe_unit_bytes
    for zone in range(WORKLOAD_ZONES):
        base = zone * volume.zone_capacity
        rng = random.Random(seed * 1000003 + zone)
        for offset in range(0, volume.zone_capacity, su):
            data = rng.randbytes(su)
            yield volume.submit(Bio.write(base + offset, data))
            model[zone].write(data)
        yield volume.submit(Bio.zone_finish(base))
    yield volume.submit(Bio.flush())


def _prime_reads(sim: Simulator, volume: RaiznVolume, seed: int,
                 model: List[_ZoneModel], count: int,
                 report: CampaignReport):
    """Seeded healthy reads that prime the per-device latency EWMAs
    before any fault arms (a gray failure develops on a *running*
    array, so the baseline distributions are learned clean)."""
    su = volume.config.stripe_unit_bytes
    rng = random.Random(seed + 41)
    for _ in range(count):
        zone = rng.randrange(WORKLOAD_ZONES)
        offset = rng.randrange(volume.zone_capacity // su) * su
        bio = yield volume.submit(
            Bio.read(zone * volume.zone_capacity + offset, su))
        if bio.result != bytes(model[zone].data[offset:offset + su]):
            report.corruption("prime", zone, offset, su)


def _mixed_load(sim: Simulator, volume: RaiznVolume, seed: int,
                model: List[_ZoneModel], num_reads: int, num_writes: int,
                report: CampaignReport):
    """Mixed read/write phase; read completion latencies are recorded.

    Reads are SU-sized and SU-aligned over the pre-filled zones (each
    lands on exactly one device, so a fifth of them hit the slow one);
    writes stream through the spare zones, cycling with resets, so the
    straggler also sees foreground write pressure.
    """
    su = volume.config.stripe_unit_bytes
    rng = random.Random(seed + 97)
    spare = list(range(WORKLOAD_ZONES, volume.num_zones))
    while len(model) < volume.num_zones:
        model.append(_ZoneModel())
    spare_at = 0
    reads_left, writes_left = num_reads, num_writes
    write_rng = random.Random(seed + 131)
    while reads_left or writes_left:
        total = reads_left + writes_left
        do_read = rng.randrange(total) < reads_left
        if do_read:
            zone = rng.randrange(WORKLOAD_ZONES)
            offset = rng.randrange(volume.zone_capacity // su) * su
            began = sim.now
            bio = yield volume.submit(
                Bio.read(zone * volume.zone_capacity + offset, su))
            report.read_latency.add(sim.now - began)
            report.reads += 1
            reads_left -= 1
            if bio.result != bytes(model[zone].data[offset:offset + su]):
                report.corruption("mixed", zone, offset, su)
        else:
            zone = spare[spare_at % len(spare)]
            if len(model[zone].data) + su > volume.zone_capacity:
                spare_at += 1
                zone = spare[spare_at % len(spare)]
                if model[zone].data:
                    yield volume.submit(
                        Bio.zone_reset(zone * volume.zone_capacity))
                    model[zone].reset()
            data = write_rng.randbytes(su)
            lba = zone * volume.zone_capacity + len(model[zone].data)
            yield volume.submit(Bio.write(lba, data))
            model[zone].write(data)
            report.writes += 1
            writes_left -= 1


def _verify(sim: Simulator, volume: RaiznVolume, model: List[_ZoneModel],
            report: CampaignReport):
    """Read back every acknowledged byte and compare (the oracle)."""
    chunk = volume.config.stripe_width_bytes
    for zone, zm in enumerate(model):
        expected = zm.data
        base = zone * volume.zone_capacity
        offset = 0
        while offset < len(expected):
            length = min(chunk, len(expected) - offset)
            bio = yield volume.submit(Bio.read(base + offset, length))
            if bio.result != bytes(expected[offset:offset + length]):
                report.corruption("verify", zone, offset, length)
            report.verified_bytes += length
            offset += length


def run_campaign(name: str, seed: int = 0, protection: bool = True,
                 inject: bool = True, quick: bool = False,
                 trace_out: Optional[str] = None) -> CampaignReport:
    """One fail-slow campaign variant; returns the filled-in report."""
    report = CampaignReport(name, seed, protection, inject)
    num_reads = 400 if quick else 2000
    num_writes = 100 if quick else 500
    sim, devices, volume = _fresh_array(seed, protection)
    if trace_out:
        from ..trace import Tracer
        volume.attach_tracer(Tracer(sim))

    model = [_ZoneModel() for _ in range(WORKLOAD_ZONES)]
    sim.run_process(_fill_zones(sim, volume, seed, model))
    # Prime until every device's read-latency distribution is trusted
    # (>= hedge_min_samples): the gray failure must arm against learned
    # *healthy* baselines, or the slow device's early samples would be
    # absorbed into its own deadline.
    min_samples = volume.config.hedge_min_samples
    for round_ in range(8):
        sim.run_process(_prime_reads(sim, volume, seed + round_, model,
                                     count=64 * NUM_DEVICES, report=report))
        if not protection or all(h.read.samples >= min_samples
                                 for h in volume.device_health):
            break

    plan = None
    if inject:
        plan = SlowPlan(seed=seed + 1, specs=[_slow_spec()])
        plan.arm(devices)
    sim.run_process(_mixed_load(sim, volume, seed, model, num_reads,
                                num_writes, report))
    if plan is not None:
        plan.disarm()
        report.slow_counts = plan.counts.to_dict()

    # Escalation end-state: a slow-evicted device goes through the
    # standard rebuild flow onto a fresh replacement before the verify
    # pass, exercising the whole ladder (demote -> evict -> rebuild).
    if protection and inject:
        template = next(d for i, d in enumerate(volume.devices)
                        if d is not None and not volume.failed[i])
        sweep = run_health_maintenance(
            sim, volume,
            lambda index: fresh_replacement(
                sim, template, name=f"replacement{index}", seed=seed + 99))
        report.sweep = sweep.to_dict()

    sim.run_process(_verify(sim, volume, model, report))
    report.health = volume.health.to_dict()
    report.device_health = volume.device_health_report()
    if trace_out:
        from .tracecli import dump_spans
        dump_spans(volume, trace_out)
    return report


def run_slowtest(seed: int = 0, quick: bool = False,
                 trace_out: Optional[str] = None) -> Dict:
    """The full slowtest: three variants plus the tail-latency bounds.

    ``trace_out`` traces the *hedged* campaign (the interesting one —
    its spans show reconstruction reads racing primaries) and dumps its
    spans there.
    """
    began = time.time()
    healthy = run_campaign("healthy", seed, protection=True, inject=False,
                           quick=quick)
    hedged = run_campaign("hedged", seed, protection=True, inject=True,
                          quick=quick, trace_out=trace_out)
    unhedged = run_campaign("unhedged", seed, protection=False, inject=True,
                            quick=quick)
    healthy_p999 = healthy.read_latency.p999
    hedged_ratio = hedged.read_latency.p999 / healthy_p999
    unhedged_ratio = unhedged.read_latency.p999 / healthy_p999
    clean = all(r.corruptions == 0 for r in (healthy, hedged, unhedged))
    defended = (hedged.health.get("slow_hedges", 0) >= 1
                and hedged.health.get("slow_demotions", 0) >= 1)
    result = {
        "seed": seed,
        "quick": quick,
        "campaigns": [r.to_dict() for r in (healthy, hedged, unhedged)],
        "hedged_p999_over_healthy": round(hedged_ratio, 2),
        "unhedged_p999_over_healthy": round(unhedged_ratio, 2),
        "hedged_bound": HEDGED_BOUND,
        "unhedged_bound": UNHEDGED_BOUND,
        "oracle_violations": sum(r.corruptions
                                 for r in (healthy, hedged, unhedged)),
        "passed": (clean and defended
                   and hedged_ratio <= HEDGED_BOUND
                   and unhedged_ratio >= UNHEDGED_BOUND),
        "elapsed_s": round(time.time() - began, 2),
    }
    result["bench"] = bench_summary(result)
    return result


def bench_summary(result: Dict) -> Dict:
    """The committed ``BENCH_tail.json`` shape: hedged-on/off tail
    latency against the healthy baseline, for one seed."""
    by_name = {c["name"]: c for c in result["campaigns"]}
    return {
        "bench": "tail_latency",
        "seed": result["seed"],
        "quick": result["quick"],
        "healthy": by_name["healthy"]["read_latency"],
        "hedged": by_name["hedged"]["read_latency"],
        "unhedged": by_name["unhedged"]["read_latency"],
        "slow_hedges": by_name["hedged"]["health"]["slow_hedges"],
        "hedge_wins": by_name["hedged"]["health"]["hedge_wins"],
        "slow_demotions": by_name["hedged"]["health"]["slow_demotions"],
        "slow_evictions": by_name["hedged"]["health"]["slow_evictions"],
        "hedged_p999_over_healthy": result["hedged_p999_over_healthy"],
        "unhedged_p999_over_healthy": result["unhedged_p999_over_healthy"],
        "passed": result["passed"],
    }


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
