"""``python -m repro trace``: run a traced workload, report, and dump.

Runs a mixed workload (sequential writes, FUA commits with flushes, a
read-back pass) on an array with ``RaiznConfig.tracing`` enabled, then:

* prints the per-layer time-attribution report (text flamegraph);
* verifies the per-device span totals reconcile with the
  :class:`~repro.trace.MetricsRegistry` counters (exit status 1 if any
  device drifts past the 1% tolerance);
* dumps the span ring buffer as JSON Lines for external tooling.

The span dump schema (one JSON object per line)::

    {"id": 17, "parent": 12, "layer": "zns", "name": "write",
     "device": "zns2", "start": 0.001020, "mark": 0.001020,
     "end": 0.001364, "bytes": 65536}

``parent`` links a sub-span to the logical bio's root ``volume`` span
when the fan-out was synchronous; ``mark`` is the channel-grant instant
of device spans (``start→mark`` is queue wait, ``mark→end`` service).
Times are simulated seconds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..block.bio import Bio, BioFlags
from ..raizn.config import RaiznConfig
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..trace import MetricsRegistry, format_trace_report, reconcile
from ..units import KiB, MiB
from ..zns.device import ZNSDevice
from .perfbench import _drive, _payload

#: Pinned array UUID: trace runs are deterministic per seed.
TRACE_UUID = bytes(reversed(range(16)))


def _build(seed: int, quick: bool) -> Tuple[Simulator, RaiznVolume,
                                            List[ZNSDevice]]:
    num_zones = 8 if quick else 16
    zone_capacity = (1 if quick else 2) * MiB
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=num_zones,
                         zone_capacity=zone_capacity, seed=seed + i)
               for i in range(5)]
    config = RaiznConfig(num_data=4, tracing=True)
    volume = RaiznVolume.create(sim, devices, config,
                                array_uuid=TRACE_UUID)
    return sim, volume, devices


def _workload(volume: RaiznVolume, seed: int, quick: bool) -> List[Bio]:
    """Sequential writes + FUA commits with flushes + a read-back pass."""
    bios: List[Bio] = []
    zones = 2 if quick else 4
    block = 64 * KiB
    data = _payload(block, seed)
    for zone in range(zones):
        start = zone * volume.zone_capacity
        for off in range(0, volume.zone_capacity // 2, block):
            bios.append(Bio.write(start + off, data))
    commit = _payload(4 * KiB, seed + 1)
    cursor = zones * volume.zone_capacity
    for step in range(32 if quick else 128):
        bios.append(Bio.write(cursor, commit,
                              BioFlags.FUA | BioFlags.PREFLUSH))
        cursor += len(commit)
        if (step + 1) % 16 == 0:
            bios.append(Bio.flush())
    for zone in range(zones):
        start = zone * volume.zone_capacity
        for off in range(0, volume.zone_capacity // 2, block):
            bios.append(Bio.read(start + off, block))
    return bios


def run_trace(quick: bool = False, seed: int = 0,
              out: str = "trace_spans.jsonl") -> int:
    """Entry point for ``python -m repro trace``; returns exit status."""
    sim, volume, devices = _build(seed, quick)
    bios = _workload(volume, seed, quick)
    moved = _drive(sim, volume, bios, iodepth=32)
    registry = MetricsRegistry.for_volume(volume)
    sink = volume.tracer.sink
    print(f"workload: {len(bios)} bios, {moved / MiB:.1f} MiB moved, "
          f"{sim.now * 1e3:.3f} ms simulated")
    print()
    print(format_trace_report(sink, registry))
    with open(out, "w") as fh:
        written = sink.dump_jsonl(fh)
    print()
    print(f"span dump: {written} spans written to {out}")
    rows = reconcile(sink, registry)
    bad = [row for row in rows if not row.ok]
    if bad:
        print(f"trace FAILED: {len(bad)} device(s) off by more than 1%")
        return 1
    print("trace PASSED: all device span totals reconcile within 1%")
    return 0


def dump_spans(volume: RaiznVolume, path: str) -> int:
    """Dump a traced volume's span ring as JSONL; returns spans written.

    Helper for the harness ``--trace`` flags: no-op (returns 0) when the
    volume was built without tracing.
    """
    if volume.tracer is None:
        return 0
    with open(path, "w") as fh:
        return volume.tracer.sink.dump_jsonl(fh)


def spans_summary(volume: RaiznVolume) -> Dict[str, int]:
    """Small JSON-able summary of a traced volume's sink (for reports)."""
    if volume.tracer is None:
        return {}
    sink = volume.tracer.sink
    return {"recorded": sink.total_recorded, "evicted": sink.evicted}


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="trace_spans.jsonl")
    args = parser.parse_args(argv)
    return run_trace(quick=args.quick, seed=args.seed, out=args.out)


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
