"""Table 1: location and size of RAIZN metadata (paper §4.3).

Reproduces the table from the implementation itself: each row's
"storage per update" is the measured encoded size of a real metadata
entry, and the memory footprints are computed from the live in-memory
structures of a populated volume.  Run at the paper's geometry
parameters (5 devices, 64 KiB stripe units) so the numbers are directly
comparable; zone capacity is scaled, which only affects the per-zone
footprint rows, reported per-unit exactly as the paper does.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..raizn.metadata import (
    GENERATION_BLOCK_COUNTERS,
    Superblock,
    encode_generation_block,
    encode_partial_parity,
    encode_relocated_su,
    encode_zone_reset,
)
from ..raizn.volume import SUPERBLOCK_VERSION
from ..sim import Simulator
from ..units import KiB, SECTOR_SIZE, fmt_bytes
from .arrays import DEFAULT, ArrayScale, make_raizn


@dataclasses.dataclass
class Table1Row:
    """One row of Table 1."""

    metadata_type: str
    persistent_location: str
    storage_per_update: str
    memory_footprint: str


def table1_rows(scale: ArrayScale = DEFAULT) -> List[Table1Row]:
    """Compute Table 1 from real encoded entries and a live volume."""
    sim = Simulator()
    volume, _devices = make_raizn(sim, scale)
    su = scale.stripe_unit_bytes
    config = volume.config

    relocated = encode_relocated_su(0, bytes(su), generation=1)
    reset_log = encode_zone_reset(0, 0, generation=1)
    generation = encode_generation_block(
        0, [1] * min(volume.num_data_zones, GENERATION_BLOCK_COUNTERS))
    partial = encode_partial_parity(0, su, generation=1, parity_offset=0,
                                    parity=bytes(su))
    superblock = Superblock(
        version=SUPERBLOCK_VERSION, num_data=config.num_data,
        num_parity=config.num_parity, stripe_unit_bytes=su,
        num_zones=scale.num_zones, zone_capacity=scale.zone_capacity,
        num_metadata_zones=scale.num_metadata_zones, device_index=0,
        array_uuid=bytes(16)).to_entry()

    desc = volume.zone_descs[0]
    bitmap_bytes = (len(desc.persistence.bits) + 7) // 8
    buffer_bytes = config.num_data * su
    gen_bytes_per_zone = SECTOR_SIZE / GENERATION_BLOCK_COUNTERS

    return [
        Table1Row("Remapped stripe unit", "Affected device only",
                  f"{fmt_bytes(SECTOR_SIZE)} (header) + "
                  f"{fmt_bytes(su)} (stripe unit)",
                  f"{fmt_bytes(len(relocated.encode()))}"),
        Table1Row("Zone reset log", "All devices",
                  fmt_bytes(len(reset_log.encode())), "-"),
        Table1Row("Generation counters", "All devices",
                  fmt_bytes(len(generation.encode())),
                  f"{gen_bytes_per_zone:.2f} bytes per logical zone"),
        Table1Row("Partial parity", "Device with parity",
                  f"{fmt_bytes(SECTOR_SIZE)} (header) + <="
                  f"{fmt_bytes(su)} (stripe unit)",
                  "-"),
        Table1Row("Superblock", "All devices",
                  fmt_bytes(len(superblock.encode())),
                  fmt_bytes(SECTOR_SIZE)),
        Table1Row("Stripe buffers", "-", "-",
                  f"{fmt_bytes(buffer_bytes)} x "
                  f"{config.stripe_buffers_per_zone} per open logical zone"),
        Table1Row("Persistence bitmaps", "-", "-",
                  f"{fmt_bytes(bitmap_bytes)} per logical zone"),
        Table1Row("Physical zone descriptors", "-", "-",
                  "~64 bytes per zone per device"),
        Table1Row("Logical zone descriptors", "-", "-",
                  "~64 bytes per logical zone"),
    ]


def measured_entry_sizes() -> dict:
    """Encoded byte sizes of each metadata entry type (for tests)."""
    su = 64 * KiB
    return {
        "relocated_su": len(encode_relocated_su(0, bytes(su), 1).encode()),
        "zone_reset": len(encode_zone_reset(0, 0, 1).encode()),
        "generation": len(encode_generation_block(0, [1] * 100).encode()),
        "partial_parity_full": len(
            encode_partial_parity(0, su, 1, 0, bytes(su)).encode()),
        "partial_parity_4k": len(
            encode_partial_parity(0, 4096, 1, 0, bytes(4096)).encode()),
    }
