"""Figure 12: time-to-repair a replaced device (paper §6.2, Obs. 4).

Fills the volume to a chosen fraction, fails device 0, replaces it with
a blank device, and measures the rebuild in simulated time.  RAIZN's TTR
scales linearly with the valid data (it rebuilds only up to each logical
zone's write pointer); mdraid's resync always reconstructs the entire
device address space, so its TTR is constant — the two meet at 100% fill,
where both are bottlenecked by the replacement device's write throughput.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..conv.device import ConventionalSSD
from ..faults.devicefail import fresh_replacement
from ..raizn.rebuild import rebuild
from ..sim import Simulator, simulation_gc
from ..units import MiB
from ..workloads.fio import prime_volume
from .arrays import DEFAULT, ArrayScale, make_mdraid, make_raizn


@dataclasses.dataclass
class TtrPoint:
    """One (system, fill fraction) time-to-repair measurement."""

    system: str
    fill_fraction: float
    valid_bytes: int
    bytes_rebuilt: int
    ttr_seconds: float


def raizn_ttr(fill_fraction: float, scale: ArrayScale = DEFAULT,
              seed: int = 0) -> TtrPoint:
    """RAIZN rebuild time at one fill fraction."""
    sim = Simulator()
    volume, devices = make_raizn(sim, scale, seed=seed)
    fill = int(volume.capacity * fill_fraction)
    fill -= fill % volume.zone_capacity
    if fill:
        prime_volume(sim, volume, fill, block_size=1 * MiB)
    volume.fail_device(0)
    replacement = fresh_replacement(sim, devices[1], name="replacement0")
    with simulation_gc():
        report = rebuild(sim, volume, 0, replacement)
    return TtrPoint(system="raizn", fill_fraction=fill_fraction,
                    valid_bytes=fill, bytes_rebuilt=report.bytes_written,
                    ttr_seconds=report.duration)


def mdraid_ttr(fill_fraction: float, scale: ArrayScale = DEFAULT,
               seed: int = 0) -> TtrPoint:
    """mdraid resync time (constant in fill) at one fill fraction."""
    sim = Simulator()
    volume, devices = make_mdraid(sim, scale, seed=seed)
    fill = int(volume.capacity * fill_fraction)
    fill -= fill % (1 * MiB)
    if fill:
        prime_volume(sim, volume, fill, block_size=1 * MiB)
    volume.fail_device(0)
    replacement = ConventionalSSD(
        sim, name="replacement0", capacity_bytes=scale.conv_device_capacity,
        seed=seed + 99)
    with simulation_gc():
        report = volume.resync(0, replacement)
    return TtrPoint(system="mdraid", fill_fraction=fill_fraction,
                    valid_bytes=fill, bytes_rebuilt=report.bytes_written,
                    ttr_seconds=report.duration)


def ttr_sweep(fractions: Sequence[float] = (0.125, 0.25, 0.5, 0.75, 1.0),
              scale: ArrayScale = DEFAULT, seed: int = 0) -> List[TtrPoint]:
    """Figure 12: TTR vs valid data for both systems."""
    points = []
    for fraction in fractions:
        points.append(raizn_ttr(fraction, scale, seed))
        points.append(mdraid_ttr(fraction, scale, seed))
    return points
