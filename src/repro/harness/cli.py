"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any (or every) table/figure of the paper from the command
line, without pytest.  ``python -m repro list`` shows the catalogue.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from ..units import KiB, MiB
from . import (
    ArrayScale,
    degraded_sweep,
    format_series_table,
    format_table,
    measure_raw_devices,
    points_table,
    raizn_vs_mdraid,
    rocksdb_comparison,
    run_gc_timeseries,
    stripe_unit_sweep,
    sysbench_comparison,
    table1_rows,
    throughput_vs_progress,
    ttr_sweep,
)
from .results import Series

MICRO_SCALE = ArrayScale(num_zones=16, zone_capacity=2 * MiB)
GC_SCALE = ArrayScale(num_zones=19, zone_capacity=4 * MiB)
APP_SCALE = ArrayScale(num_zones=35, zone_capacity=2 * MiB)
BLOCK_SIZES = (4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB)


def _micro_table(points) -> str:
    return format_table(["system", "workload", "bs KiB", "MiB/s",
                         "p50 us", "p99.9 us"], points_table(points))


def run_table1() -> None:
    rows = table1_rows()
    print(format_table(
        ["Metadata type", "Persistent location", "Storage per update",
         "Memory footprint"],
        [[r.metadata_type, r.persistent_location, r.storage_per_update,
          r.memory_footprint] for r in rows]))


def run_rawdev() -> None:
    result = measure_raw_devices()
    print(format_table(
        ["device", "write MiB/s", "read MiB/s"],
        [["ZNS (ZN540 model)", round(result.zns_write),
          round(result.zns_read)],
         ["conventional", round(result.conv_write), round(result.conv_read)],
         ["ZNS gap", f"{result.write_gap * 100:.1f}%",
          f"{result.read_gap * 100:.1f}%"]]))


def run_fig7() -> None:
    print(_micro_table(stripe_unit_sweep(
        "mdraid", block_sizes=BLOCK_SIZES, scale=MICRO_SCALE)))


def run_fig8() -> None:
    print(_micro_table(stripe_unit_sweep(
        "raizn", block_sizes=BLOCK_SIZES, scale=MICRO_SCALE)))


def run_fig9() -> None:
    print(_micro_table(raizn_vs_mdraid(block_sizes=BLOCK_SIZES,
                                       scale=MICRO_SCALE)))


def run_fig10() -> None:
    mdraid = run_gc_timeseries("mdraid", scale=GC_SCALE,
                               block_size=256 * KiB)
    raizn = run_gc_timeseries("raizn", scale=GC_SCALE, block_size=256 * KiB)
    print(format_series_table(
        [Series("mdraid", throughput_vs_progress(mdraid, points=10)),
         Series("RAIZN", throughput_vs_progress(raizn, points=10))],
        "overwritten", "MiB/s", buckets=10))
    print(f"\nmdraid: phase1 {mdraid.phase1_mean_mib_s:.0f} MiB/s, worst "
          f"{mdraid.phase2_min_mib_s:.0f} MiB/s "
          f"({mdraid.throughput_drop * 100:.0f}% drop)")
    print(f"RAIZN:  phase1 {raizn.phase1_mean_mib_s:.0f} MiB/s, phase2 "
          f"{raizn.phase2_mean_mib_s:.0f} MiB/s (flat)")


def run_fig11() -> None:
    print(_micro_table(degraded_sweep(scale=MICRO_SCALE)))


def run_fig12() -> None:
    points = ttr_sweep(scale=ArrayScale(num_zones=35,
                                        zone_capacity=2 * MiB))
    print(format_table(
        ["system", "fill", "valid MiB", "rebuilt MiB", "TTR (sim s)"],
        [[p.system, f"{p.fill_fraction:.3f}", p.valid_bytes // MiB,
          p.bytes_rebuilt // MiB, round(p.ttr_seconds, 4)]
         for p in points]))


def run_fig13() -> None:
    cells = rocksdb_comparison(num_ops=2000, scale=APP_SCALE)
    print(format_table(
        ["system", "workload", "value B", "ops/s", "p99 ms"],
        [[c.system, c.workload, c.value_size, round(c.ops_per_second),
          round(c.p99_latency * 1e3, 3)] for c in cells]))


def run_fig14() -> None:
    cells = sysbench_comparison(transactions=256, tables=4, rows=1500,
                                scale=ArrayScale(num_zones=19,
                                                 zone_capacity=2 * MiB))
    print(format_table(
        ["system", "workload", "threads", "TPS", "avg ms", "p95 ms"],
        [[c.system, c.workload, c.threads, round(c.tps),
          round(c.avg_latency * 1e3, 2), round(c.p95_latency * 1e3, 2)]
         for c in cells]))


def run_trace_cli(quick: bool = False, seed: int = 0,
                  out: str = "trace_spans.jsonl") -> int:
    """Traced workload: attribution report + reconciliation + span dump."""
    from .tracecli import run_trace

    return run_trace(quick=quick, seed=seed, out=out)


def run_crashtest(states: int = 600, seed: int = 0,
                  out: str = "crashtest_report.json",
                  trace: Optional[str] = None) -> int:
    """Systematic crash-state exploration of the recovery path."""
    from .crashtest import explore, write_report

    budget = 12
    boundaries = max(1, -(-states // budget))  # ceil

    def progress(report) -> None:
        print(f"\r  explored {report.states_explored} states "
              f"({len(report.distinct_states)} distinct, "
              f"{report.double_crash_states} double-crash), "
              f"{len(report.violations)} violations", end="", flush=True)

    report = explore(seed=seed, boundaries=boundaries,
                     budget_per_boundary=budget, progress=progress,
                     trace_out=trace)
    print()
    write_report(report, out)
    print(f"workload: {report['workload_ops']} ops, "
          f"{report['completion_boundaries']} completion boundaries "
          f"({report['boundaries_sampled']} sampled)")
    print(f"states: {report['states_explored']} explored, "
          f"{report['distinct_states']} distinct, "
          f"{report['double_crash_states']} double-crash "
          f"({report['double_crash_fired']} fired mid-recovery), "
          f"survivor product {report['survivor_product_total']}")
    print(f"oracle: {report['oracle_checks']}")
    if report["violations"]:
        print(f"FAILED: {len(report['violations'])} durability "
              "violations; first:")
        first = report["violations"][0]
        print(f"  [{first['check']}] boundary {first['boundary']}: "
              f"{first['detail']}")
    else:
        print("oracle passed on every explored state")
    print(f"report written to {out}")
    return 1 if report["violations"] else 0


def run_errortest_cli(seed: int = 0, smoke: bool = False,
                      out: str = "errortest_report.json",
                      trace: Optional[str] = None) -> int:
    """Seeded error campaign + integrity oracle + detection-power check."""
    from .errortest import run_errortest, write_report

    report = run_errortest(seed=seed, smoke=smoke, trace_out=trace)
    write_report(report, out)
    injected = report["injected"]
    health = report["health"]
    print(f"workload: {report['workload_ops']} ops "
          f"({report['midstream_reads']} inline reads)")
    print(f"injected: {injected['total']} faults "
          f"(latent {injected['latent']}, transient {injected['transient']}, "
          f"wear {injected['wear']}; floor {report['min_faults']})")
    print(f"healing: {health['heals']} stripe units healed, "
          f"{health['parity_heals']} parity heals, "
          f"{health['transient_retries']} retries, "
          f"{health['evictions']} evictions")
    if report.get("scrub"):
        print(f"scrub: {report['scrub']['stripes_scanned']} stripes, "
              f"{report['scrub']['parity_heals']} parity repairs")
    verified = sum(p["bytes"] for p in report["verify_passes"])
    print(f"verified: {verified} bytes over "
          f"{len(report['verify_passes'])} passes, "
          f"{report['corruptions']} corruptions")
    detection = report["detection_power"]
    print(f"detection power (read-repair off): "
          f"{detection['corruptions']} corruptions caught "
          f"({detection['unrepaired_serves']} unrepaired serves)")
    print("errortest PASSED" if report["passed"] else "errortest FAILED")
    print(f"report written to {out}")
    return 0 if report["passed"] else 1


def run_slowtest_cli(seed: int = 0, quick: bool = False,
                     out: str = "slowtest_report.json",
                     bench_out: Optional[str] = None,
                     trace: Optional[str] = None) -> int:
    """Fail-slow campaign: hedged-read tail bound + integrity oracle."""
    from .slowtest import run_slowtest, write_report

    report = run_slowtest(seed=seed, quick=quick, trace_out=trace)
    write_report(report, out)
    if bench_out:
        write_report(report["bench"], bench_out)
    by_name = {c["name"]: c for c in report["campaigns"]}
    for name in ("healthy", "hedged", "unhedged"):
        lat = by_name[name]["read_latency"]
        print(f"{name:9s} p50 {lat['p50_ms']:7.3f} ms   "
              f"p99 {lat['p99_ms']:7.3f} ms   p999 {lat['p999_ms']:7.3f} ms"
              f"   ({by_name[name]['reads']} reads)")
    hedged = by_name["hedged"]["health"]
    print(f"defense: {hedged['slow_hedges']} hedges "
          f"({hedged['hedge_wins']} reconstruction wins), "
          f"{hedged['slow_demotions']} demotions, "
          f"{hedged['slow_evictions']} slow evictions")
    sweep = by_name["hedged"].get("sweep") or {}
    if sweep.get("replaced"):
        print(f"escalation: devices {sweep['replaced']} rebuilt onto fresh "
              f"replacements ({sweep['zones_rebuilt']} zones)")
    print(f"tail bound: hedged p999 = "
          f"{report['hedged_p999_over_healthy']}x healthy "
          f"(<= {report['hedged_bound']}x required), unhedged = "
          f"{report['unhedged_p999_over_healthy']}x "
          f"(>= {report['unhedged_bound']}x required)")
    print(f"oracle: {report['oracle_violations']} violations")
    print("slowtest PASSED" if report["passed"] else "slowtest FAILED")
    print(f"report written to {out}"
          + (f", bench numbers to {bench_out}" if bench_out else ""))
    return 0 if report["passed"] else 1


def run_soaktest_cli(seed: int = 0, quick: bool = False,
                     out: str = "soaktest_report.json") -> int:
    """Compound-fault soak: crash x error x slow x wear on one array."""
    from .soaktest import run_soaktest, write_report

    def progress(report) -> None:
        print(f"\r  {report.candidates} crash candidates "
              f"({report.mounted} mounted, {report.pruned} pruned), "
              f"{len(report.violations)} violations", end="", flush=True)

    report = run_soaktest(seed=seed, quick=quick, progress=progress)
    print()
    write_report(report, out)
    pruning = report["pruning"]
    print(f"campaign: {report['phases']} phases, "
          f"{report['workload_ops']} ops, {report['crash_cycles']} "
          f"crash/recover cycles, {report['evictions']} evictions, "
          f"{report['rebuilds']} rebuilds, {report['scrubs']} scrubs")
    print(f"faults: {report['injected']} injected, "
          f"{report['slowed_commands']} commands slowed, "
          f"endurance {[e['worn_zones'] for e in report['endurance']]} "
          "worn zones per device")
    print(f"pruning: {pruning['pruned']}/{pruning['candidates']} candidates "
          f"pruned (ratio {pruning['ratio']}, floor {pruning['floor']}), "
          f"{pruning['verified_sample']} pruned states verified, "
          f"{len(pruning['escapes'])} mechanism escapes")
    print(f"mechanisms: {report['mechanisms_exercised']}")
    print(f"oracle: {report['oracle_checks']} -> "
          f"{report['oracle_violations']} violations")
    print(f"fingerprint: {report['campaign_fingerprint']}")
    print("soaktest PASSED" if report["passed"] else "soaktest FAILED")
    print(f"report written to {out}")
    return 0 if report["passed"] else 1


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": run_table1,
    "rawdev": run_rawdev,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
}

DESCRIPTIONS = {
    "crashtest": "systematic crash-state enumeration + durability oracle",
    "errortest": "seeded error campaign + integrity oracle (self-healing)",
    "slowtest": "fail-slow campaign + hedged-read tail-latency bound",
    "soaktest": "compound-fault soak: crash x error x slow x wear, "
                "mechanism-pruned",
    "trace": "per-bio span tracing: attribution report + JSONL span dump",
    "table1": "Table 1: RAIZN metadata location and size",
    "rawdev": "§6.1 raw device throughput (model calibration)",
    "fig7": "Figure 7: mdraid stripe-unit sweep",
    "fig8": "Figure 8: RAIZN stripe-unit sweep",
    "fig9": "Figure 9: RAIZN vs mdraid microbenchmarks",
    "fig10": "Figure 10: GC timeseries (the headline result)",
    "fig11": "Figure 11: degraded read performance",
    "fig12": "Figure 12: time to repair vs valid data",
    "fig13": "Figure 13: RocksDB db_bench",
    "fig14": "Figure 14: sysbench OLTP",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the RAIZN paper's tables and figures on "
                    "the simulated substrate.")
    parser.add_argument("experiment", nargs="?", default="list",
                        help="experiment id (see 'list'), or 'all'")
    parser.add_argument("--states", type=int, default=600,
                        help="crashtest: target number of crash states")
    parser.add_argument("--seed", type=int, default=0,
                        help="crashtest/errortest: campaign seed")
    parser.add_argument("--out", default=None,
                        help="crashtest/errortest: JSON report path")
    parser.add_argument("--smoke", action="store_true",
                        help="errortest: small CI-sized campaign")
    parser.add_argument("--quick", action="store_true",
                        help="slowtest/soaktest: small CI-sized campaign")
    parser.add_argument("--bench-out", default=None,
                        help="slowtest: also write BENCH_tail.json numbers "
                             "to this path")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="crashtest/errortest/slowtest: trace the "
                             "campaign and dump spans (JSONL) to PATH")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:\n")
        for name, description in DESCRIPTIONS.items():
            print(f"  {name:9s} {description}")
        print("  all       run everything (excludes crashtest)")
        return 0
    if args.experiment == "trace":
        began = time.time()
        status = run_trace_cli(quick=args.quick, seed=args.seed,
                               out=args.out or "trace_spans.jsonl")
        print(f"[trace completed in {time.time() - began:.1f}s wall]")
        return status
    if args.experiment == "crashtest":
        began = time.time()
        status = run_crashtest(states=args.states, seed=args.seed,
                               out=args.out or "crashtest_report.json",
                               trace=args.trace)
        print(f"[crashtest completed in {time.time() - began:.1f}s wall]")
        return status
    if args.experiment == "errortest":
        began = time.time()
        status = run_errortest_cli(seed=args.seed, smoke=args.smoke,
                                   out=args.out or "errortest_report.json",
                                   trace=args.trace)
        print(f"[errortest completed in {time.time() - began:.1f}s wall]")
        return status
    if args.experiment == "soaktest":
        began = time.time()
        status = run_soaktest_cli(seed=args.seed, quick=args.quick,
                                  out=args.out or "soaktest_report.json")
        print(f"[soaktest completed in {time.time() - began:.1f}s wall]")
        return status
    if args.experiment == "slowtest":
        began = time.time()
        status = run_slowtest_cli(seed=args.seed, quick=args.quick,
                                  out=args.out or "slowtest_report.json",
                                  bench_out=args.bench_out,
                                  trace=args.trace)
        print(f"[slowtest completed in {time.time() - began:.1f}s wall]")
        return status
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              "try 'list'", file=sys.stderr)
        return 2
    for name in names:
        print(f"\n=== {DESCRIPTIONS[name]} ===")
        began = time.time()
        EXPERIMENTS[name]()
        print(f"[{name} completed in {time.time() - began:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
