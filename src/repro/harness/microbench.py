"""Raw-volume microbenchmarks: Figures 7, 8 and 9 (paper §6.1).

Three workloads, matching the paper's fio configurations:

* sequential write — 8 jobs × QD 64, direct IO, fresh volume;
* sequential read — 8 jobs × QD 64 over a primed volume;
* random read — 1 job × QD 256 over the primed region.

``stripe_unit_sweep`` reruns them for different stripe-unit sizes
(Figures 7 and 8); ``raizn_vs_mdraid`` compares the two systems at the
64 KiB stripe unit the paper settles on (Figure 9), reporting throughput,
median latency, and 99.9th-percentile latency per block size.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..sim import Simulator
from ..units import KiB, MiB
from ..workloads.fio import FioJobSpec, FioResult, run_fio
from .arrays import DEFAULT, ArrayScale, make_mdraid, make_raizn

#: Block sizes the paper sweeps (4 KiB – 1 MiB).
PAPER_BLOCK_SIZES = [4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB]

WORKLOADS = ("write", "read", "randread")


@dataclasses.dataclass
class MicrobenchPoint:
    """One (system, workload, block size) measurement."""

    system: str
    workload: str
    block_size: int
    throughput_mib_s: float
    median_latency: float
    p999_latency: float


def _fresh_volume(kind: str, scale: ArrayScale, stripe_unit: int, seed: int):
    sim = Simulator()
    sized = dataclasses.replace(scale, stripe_unit_bytes=stripe_unit)
    if kind == "raizn":
        volume, _devices = make_raizn(sim, sized, seed=seed)
    elif kind == "mdraid":
        volume, _devices = make_mdraid(sim, sized, seed=seed)
    else:
        raise ValueError(f"unknown system kind: {kind}")
    return sim, volume


def _job_geometry(volume, block_size: int, per_job_bytes: int):
    """Fit the paper's 8-job layout onto (possibly tiny) scaled volumes."""
    align = getattr(volume, "zone_capacity", None)
    numjobs = 8
    if align:
        numjobs = max(1, min(8, volume.capacity // align))
    per_job_region = volume.capacity // numjobs
    if align:
        per_job_region -= per_job_region % align
    size_per_job = min(per_job_bytes, per_job_region)
    size_per_job -= size_per_job % block_size
    return align, numjobs, per_job_region, max(size_per_job, block_size)


def _run_workload(sim: Simulator, volume, kind: str, workload: str,
                  block_size: int, per_job_bytes: int,
                  seed: int) -> FioResult:
    align, numjobs, per_job_region, size_per_job = _job_geometry(
        volume, block_size, per_job_bytes)
    if workload in ("write", "read"):
        spec = FioJobSpec(rw=workload, block_size=block_size, iodepth=64,
                          numjobs=numjobs, size_per_job=size_per_job,
                          region=(0, volume.capacity), align=align,
                          seed=seed)
    else:  # randread: 1 job, QD 256, within the primed first-job region
        spec = FioJobSpec(rw="randread", block_size=block_size, iodepth=256,
                          numjobs=1, size_per_job=2 * size_per_job,
                          region=(0, size_per_job), seed=seed)
    return run_fio(sim, volume, spec)


def run_microbench(kind: str, workload: str, block_size: int,
                   stripe_unit: int = 64 * KiB,
                   scale: ArrayScale = DEFAULT,
                   per_job_bytes: Optional[int] = None,
                   seed: int = 0) -> MicrobenchPoint:
    """One cell of Figures 7–9: fresh array, primed if reading."""
    sim, volume = _fresh_volume(kind, scale, stripe_unit, seed)
    per_job = per_job_bytes or _default_per_job(volume, block_size)
    if workload != "write":
        # Prime the volume before read workloads (the paper primes with
        # a full sequential write pass); the primed range must cover what
        # the read jobs will touch, whole-MiB rounded.
        _align, _jobs, region, read_size = _job_geometry(
            volume, block_size, per_job)
        prime_size = min(-(-read_size // MiB) * MiB, region)
        _run_workload(sim, volume, kind, "write", 1 * MiB, prime_size, seed)
    result = _run_workload(sim, volume, kind, workload, block_size,
                           per_job, seed)
    return MicrobenchPoint(
        system=kind, workload=workload, block_size=block_size,
        throughput_mib_s=result.throughput_mib_s,
        median_latency=result.latency.median,
        p999_latency=result.latency.p999)


def _default_per_job(volume, block_size: int) -> int:
    """Per-job transfer size: bounded by the volume and by IO count.

    Small-block runs are capped at a few thousand IOs per job so sweeps
    finish quickly; ``_job_geometry`` clamps further to what the volume
    can actually hold.
    """
    max_ios = 4096
    return max(min(volume.capacity // 8,
                   max(block_size * max_ios, 4 * MiB)), block_size)


def stripe_unit_sweep(kind: str,
                      stripe_units: Sequence[int] = (16 * KiB, 64 * KiB),
                      block_sizes: Sequence[int] = tuple(PAPER_BLOCK_SIZES),
                      workloads: Sequence[str] = WORKLOADS,
                      scale: ArrayScale = DEFAULT,
                      seed: int = 0) -> List[MicrobenchPoint]:
    """Figures 7 (mdraid) and 8 (RAIZN): stripe-unit size sweep."""
    points = []
    for stripe_unit in stripe_units:
        for workload in workloads:
            for block_size in block_sizes:
                point = run_microbench(kind, workload, block_size,
                                       stripe_unit=stripe_unit, scale=scale,
                                       seed=seed)
                point = dataclasses.replace(
                    point, system=f"{kind}/su={stripe_unit // KiB}K")
                points.append(point)
    return points


def raizn_vs_mdraid(block_sizes: Sequence[int] = tuple(PAPER_BLOCK_SIZES),
                    workloads: Sequence[str] = WORKLOADS,
                    scale: ArrayScale = DEFAULT,
                    seed: int = 0) -> List[MicrobenchPoint]:
    """Figure 9: both systems at the 64 KiB stripe unit."""
    points = []
    for kind in ("mdraid", "raizn"):
        for workload in workloads:
            for block_size in block_sizes:
                points.append(run_microbench(kind, workload, block_size,
                                             scale=scale, seed=seed))
    return points


def points_table(points: List[MicrobenchPoint]) -> List[List[object]]:
    """Rows for :func:`repro.harness.results.format_table`."""
    return [[p.system, p.workload, p.block_size // KiB,
             round(p.throughput_mib_s, 1),
             round(p.median_latency * 1e6, 1),
             round(p.p999_latency * 1e6, 1)]
            for p in points]
