"""Wall-clock performance macro-benchmark of the simulator datapath.

Every paper figure in this repository is produced by the discrete-event
simulator, so the wall-clock rate at which simulated IOs retire bounds
how large the reproduced sweeps can get.  This harness measures that
rate on workloads representative of the figures:

* ``seq_write`` — deep-queue sequential writes across many logical zones
  (the RAID-5 write path: stripe fan-out, parity, partial-parity logs);
* ``multizone_write`` — writes interleaved round-robin over several open
  zones (stresses stripe-buffer and open-zone bookkeeping);
* ``oltp_flush`` — small FUA+PREFLUSH writes with periodic standalone
  flushes (the §5.3 persistence protocol, metadata-append heavy);
* ``seq_read`` — sequential reads over a primed volume;
* ``degraded_read`` — the same reads with one device failed, so every
  fourth stripe unit is reconstructed from parity;
* ``scrub_overhead`` — the same reads with a background parity scrub
  running and a sprinkling of latent media errors, so the foreground
  rate includes verify-and-heal traffic;
* ``tail_latency`` — the same reads with fail-slow protection enabled
  and one gray-failing (persistently slow, intermittently stalling)
  device, so the rate includes hedge timers, reconstruction races, and
  health scoring (the committed tail-latency numbers themselves live in
  ``BENCH_tail.json``, produced by ``python -m repro slowtest``);
* ``tracing_overhead`` — ``seq_write`` rerun with per-bio span tracing
  (``RaiznConfig.tracing``) enabled.  The tracer is inert, so the run
  must produce the *same digest* as ``seq_write`` (asserted), and the
  CPU-time delta between the two is the tracing tax, reported as
  ``tracing_overhead_pct`` (budget: < 3% on an otherwise idle machine).
  Because the effect is a few percent while timing noise on a shared
  machine can be 10%+, the percentage comes from a dedicated
  *interleaved paired* measurement (alternating fresh builds,
  best-of-N CPU seconds each; see ``_paired_tracing_overhead``) rather
  than from the two scenario rows.

Each scenario reports **simulated MiB moved per wall-clock second** —
higher is a faster simulator, not a faster simulated device.  The run
also produces a determinism digest (simulated clock, device/volume stats
counters, SHA-256 of every device's media) so optimizations can assert
byte-identical simulation results.

Run it from the repository root::

    PYTHONPATH=src python -m repro.harness.perfbench            # full
    PYTHONPATH=src RAIZN_PERF_FAST=1 python -m repro.harness.perfbench

Profile the dominant scenario::

    PYTHONPATH=src python -m cProfile -s cumtime \
        -m repro.harness.perfbench --only seq_write
"""

from __future__ import annotations

import dataclasses
import hashlib
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..block.bio import Bio, BioFlags
from ..raizn.config import RaiznConfig
from ..raizn.volume import RaiznVolume
from ..sim import Simulator, simulation_gc
from ..units import KiB, MiB
from ..zns.device import ZNSDevice

#: Pinned array UUID so formatted media contents are reproducible.
BENCH_UUID = bytes(range(16))

SCENARIO_NAMES = ("seq_write", "multizone_write", "oltp_flush",
                  "seq_read", "degraded_read", "scrub_overhead",
                  "tail_latency", "tracing_overhead")

#: Scenarios whose wall-clock rate defines the write-path macro number.
WRITE_PATH_SCENARIOS = ("seq_write", "multizone_write", "oltp_flush")


@dataclasses.dataclass(frozen=True)
class PerfScale:
    """Array geometry and IO volume of one benchmark configuration."""

    num_devices: int = 5
    num_zones: int = 32
    zone_capacity: int = 4 * MiB
    stripe_unit_bytes: int = 64 * KiB
    #: Logical zones each write scenario touches.
    zones_used: int = 8
    #: Outstanding IOs per scenario driver.
    iodepth: int = 64
    #: Standalone flush every N writes in the OLTP scenario.
    flush_interval: int = 32

    def config(self) -> RaiznConfig:
        return RaiznConfig(num_data=self.num_devices - 1,
                           stripe_unit_bytes=self.stripe_unit_bytes)


FULL_SCALE = PerfScale()
FAST_SCALE = PerfScale(num_zones=16, zone_capacity=1 * MiB, zones_used=4,
                       iodepth=32, flush_interval=16)


@dataclasses.dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    simulated_bytes: int
    wall_seconds: float
    sim_seconds: float
    mib_per_wall_second: float
    digest: str
    #: Median and population stddev of the per-repeat wall times: the
    #: best-of-N number above is the rate estimate, these two say how
    #: noisy the machine was while producing it.
    wall_median_seconds: float = 0.0
    wall_stddev_seconds: float = 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "simulated_bytes": self.simulated_bytes,
            "wall_seconds": round(self.wall_seconds, 4),
            "wall_median_seconds": round(self.wall_median_seconds, 4),
            "wall_stddev_seconds": round(self.wall_stddev_seconds, 4),
            "sim_seconds": round(self.sim_seconds, 6),
            "mib_per_wall_second": round(self.mib_per_wall_second, 1),
            "digest": self.digest,
        }


@dataclasses.dataclass
class PerfReport:
    """Aggregated benchmark outcome."""

    scenarios: List[ScenarioResult]
    #: Combined digest over every scenario digest, in order.
    digest: str
    write_path_mib_per_wall_second: float
    total_wall_seconds: float
    #: CPU-time cost of span tracing: percent slowdown of
    #: ``tracing_overhead`` vs ``seq_write``, from the interleaved
    #: paired measurement (None if either scenario was skipped).
    tracing_overhead_pct: Optional[float] = None

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.scenarios:
            if result.name == name:
                return result
        raise KeyError(name)

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenarios": [s.to_json() for s in self.scenarios],
            "digest": self.digest,
            "write_path_mib_per_wall_second":
                round(self.write_path_mib_per_wall_second, 1),
            "total_wall_seconds": round(self.total_wall_seconds, 3),
        }
        if self.tracing_overhead_pct is not None:
            out["tracing_overhead_pct"] = round(self.tracing_overhead_pct, 2)
        return out


# -- scenario plumbing ---------------------------------------------------------


def _fresh_array(scale: PerfScale,
                 seed: int) -> Tuple[Simulator, RaiznVolume, List[ZNSDevice]]:
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=scale.num_zones,
                         zone_capacity=scale.zone_capacity, seed=seed + i)
               for i in range(scale.num_devices)]
    volume = RaiznVolume.create(sim, devices, scale.config(),
                                array_uuid=BENCH_UUID)
    return sim, volume, devices


def _payload(nbytes: int, seed: int) -> bytes:
    """Deterministic payload without consuming any shared RNG state."""
    block = hashlib.sha256(seed.to_bytes(8, "little")).digest()
    return (block * (nbytes // len(block) + 1))[:nbytes]


class _Driver:
    """Callback-style issue loop: ``iodepth`` bios in flight, FIFO order.

    A transliteration of the former generator driver (``yield
    window.request()`` per bio, then drain) without a generator frame,
    resource object, or grant event per IO.  Every now-queue hop of the
    process version is preserved 1:1 — grant hops land in the same slots,
    waiter wake-ups ride the same single-callback dispatch — so fixed-seed
    digests are unchanged while the per-bio process machinery (generator
    send, resume trampoline, request-event allocation) disappears from
    the measured wall time.
    """

    __slots__ = ("sim", "volume", "requests", "in_flight", "iodepth",
                 "index", "drain_index", "completions", "failures", "waiting")

    def __init__(self, sim: Simulator, volume: RaiznVolume,
                 requests: List[Bio], iodepth: int):
        self.sim = sim
        self.volume = volume
        self.requests = requests
        self.iodepth = iodepth
        self.in_flight = 0
        self.index = 0
        self.drain_index = 0
        self.completions: List = []
        self.failures: List[BaseException] = []
        #: True while the issue loop is parked on a full window; at most
        #: one step ever waits (the loop is sequential), so this replaces
        #: the resource's waiter queue.
        self.waiting = False

    def _start(self) -> None:
        """Process-start hop: request the first window slot (no submit)."""
        if self.requests:
            self.in_flight += 1
            self.sim._now_queue.append((self._step, ()))

    def _step(self) -> None:
        event = self.volume.submit(self.requests[self.index])
        self.index += 1
        # ``add_callback`` inlined for the untriggered, no-callback event
        # ``submit`` returns in non-traced runs; anything else (tracer
        # callback already attached) takes the general method.
        if event.callback is None and not event.triggered:
            event.callback = self._on_done
        else:
            event.add_callback(self._on_done)
        self.completions.append(event)
        if self.failures:
            raise self.failures[0]
        if self.index < len(self.requests):
            if self.in_flight < self.iodepth:
                # Slot free: queue the next issue step exactly where the
                # pre-triggered request event's continuation hop used to
                # land.
                self.in_flight += 1
                self.sim._now_queue.append((self._step, ()))
            else:
                self.waiting = True
        else:
            self._drain()

    def _on_done(self, event) -> None:
        if self.waiting:
            # Hand the slot straight to the parked issue step (in-flight
            # count unchanged), in the dispatch slot the released request
            # event's wake-up used to occupy.
            self.waiting = False
            self.sim._now_queue.append((self._step, ()))
        else:
            self.in_flight -= 1
        if not event.ok:
            self.failures.append(event.value)

    def _drain(self) -> None:
        completions = self.completions
        index = self.drain_index
        while index < len(completions):
            event = completions[index]
            index += 1
            if not event.triggered:
                self.drain_index = index
                event.add_callback(self._drained)
                return
        if self.failures:
            raise self.failures[0]

    def _drained(self, event) -> None:
        if not event.ok:
            raise event.value
        self._drain()


def _drive(sim: Simulator, volume: RaiznVolume,
           requests: List[Bio], iodepth: int) -> int:
    """Issue ``requests`` in order with ``iodepth`` in flight; drain all."""
    driver = _Driver(sim, volume, requests, iodepth)
    sim.schedule(0.0, driver._start)
    with simulation_gc():
        sim.run()
    if driver.index < len(requests) or \
            not all(e.triggered for e in driver.completions):
        raise RuntimeError("driver stalled before draining all requests")
    moved = 0
    for bio in requests:
        moved += bio.length
    return moved


def _seq_write_bios(volume: RaiznVolume, scale: PerfScale,
                    block_size: int, seed: int) -> List[Bio]:
    data = _payload(block_size, seed)
    bios = []
    for zone in range(scale.zones_used):
        start = zone * volume.zone_capacity
        for off in range(0, volume.zone_capacity, block_size):
            bios.append(Bio.write(start + off, data))
    return bios


def _multizone_write_bios(volume: RaiznVolume, scale: PerfScale,
                          block_size: int, seed: int) -> List[Bio]:
    """Round-robin over zones: every zone sequential, globally interleaved."""
    data = _payload(block_size, seed)
    cursors = [z * volume.zone_capacity for z in range(scale.zones_used)]
    per_zone = volume.zone_capacity // block_size
    bios = []
    for step in range(per_zone):
        for zone in range(scale.zones_used):
            bios.append(Bio.write(cursors[zone], data))
            cursors[zone] += block_size
    return bios


def _oltp_bios(volume: RaiznVolume, scale: PerfScale, seed: int) -> List[Bio]:
    """4 KiB FUA commits with periodic checkpoint-style flushes."""
    block_size = 4 * KiB
    data = _payload(block_size, seed)
    zones = max(2, scale.zones_used // 2)
    cursors = [z * volume.zone_capacity for z in range(zones)]
    budget = volume.zone_capacity // 4 // block_size  # quarter zone each
    bios: List[Bio] = []
    for step in range(budget):
        for zone in range(zones):
            bios.append(Bio.write(cursors[zone], data,
                                  BioFlags.FUA | BioFlags.PREFLUSH))
            cursors[zone] += block_size
            if len(bios) % scale.flush_interval == 0:
                bios.append(Bio.flush())
    return bios


def _read_bios(volume: RaiznVolume, scale: PerfScale,
               block_size: int) -> List[Bio]:
    bios = []
    for zone in range(scale.zones_used):
        start = zone * volume.zone_capacity
        for off in range(0, volume.zone_capacity, block_size):
            bios.append(Bio.read(start + off, block_size))
    return bios


def _digest_state(sim: Simulator, volume: RaiznVolume,
                  devices: List[ZNSDevice]) -> str:
    """SHA-256 over the observable simulation outcome."""
    sha = hashlib.sha256()
    sha.update(repr(round(sim.now, 9)).encode())
    stats = volume.stats
    for counter in (stats.reads, stats.writes, stats.flushes,
                    stats.zone_mgmt, stats.bytes_read, stats.bytes_written):
        sha.update(counter.to_bytes(8, "little"))
    for dev in devices:
        dstats = dev.stats
        for counter in (dstats.reads, dstats.writes, dstats.flushes,
                        dstats.zone_mgmt, dstats.bytes_read,
                        dstats.bytes_written, dstats.media_bytes_written):
            sha.update(counter.to_bytes(8, "little"))
        sha.update(hashlib.sha256(memoryview(dev._media)).digest())
        for zone in dev.zones:
            sha.update(zone.write_pointer.to_bytes(8, "little"))
    return sha.hexdigest()


# -- scenarios ------------------------------------------------------------------


def _run_scenario(name: str, scale: PerfScale, seed: int,
                  repeats: int = 1) -> ScenarioResult:
    """Run one scenario ``repeats`` times; report the best wall-clock run.

    The simulation itself is deterministic, so every repeat must produce
    the same digest and simulated end time — asserted here — and the
    minimum wall time is the least noise-contaminated estimate of the
    simulator's speed (standard best-of-N benchmarking practice).
    """
    builder: Callable[..., Tuple] = _SCENARIOS[name]
    walls: List[float] = []
    digest: Optional[str] = None
    for _ in range(max(1, repeats)):
        sim, volume, devices, bios = builder(scale, seed)
        sim_start = sim.now
        driver = _Driver(sim, volume, bios, scale.iodepth)
        sim.schedule(0.0, driver._start)
        # The timed window is the event-loop execution alone: driver
        # setup, the drain verification below, and the context manager's
        # closing gc.collect() all measure the harness, not the
        # simulator, and were adding tens of milliseconds of noise.
        with simulation_gc():
            wall_start = time.perf_counter()
            sim.run()
            walls.append(time.perf_counter() - wall_start)
        if driver.index < len(bios) or \
                not all(e.triggered for e in driver.completions):
            raise RuntimeError("driver stalled before draining all requests")
        moved = sum(bio.length for bio in bios)
        run_digest = _digest_state(sim, volume, devices)
        if digest is None:
            digest = run_digest
        elif run_digest != digest:
            raise AssertionError(
                f"{name}: digest varies across same-seed repeats "
                f"({digest[:16]} vs {run_digest[:16]})")
        sim_seconds = sim.now - sim_start
    assert walls and digest is not None
    best_wall = min(walls)
    return ScenarioResult(
        name=name,
        simulated_bytes=moved,
        wall_seconds=best_wall,
        sim_seconds=sim_seconds,
        mib_per_wall_second=(moved / MiB) / best_wall if best_wall else 0.0,
        digest=digest,
        wall_median_seconds=statistics.median(walls),
        wall_stddev_seconds=statistics.pstdev(walls) if len(walls) > 1
        else 0.0,
    )


def _build_seq_write(scale: PerfScale, seed: int):
    sim, volume, devices = _fresh_array(scale, seed)
    return sim, volume, devices, _seq_write_bios(volume, scale, 64 * KiB,
                                                 seed)


def _build_multizone_write(scale: PerfScale, seed: int):
    sim, volume, devices = _fresh_array(scale, seed)
    return sim, volume, devices, _multizone_write_bios(volume, scale,
                                                       16 * KiB, seed)


def _build_oltp(scale: PerfScale, seed: int):
    sim, volume, devices = _fresh_array(scale, seed)
    return sim, volume, devices, _oltp_bios(volume, scale, seed)


def _prime(sim: Simulator, volume: RaiznVolume, scale: PerfScale,
           seed: int) -> None:
    _drive(sim, volume, _seq_write_bios(volume, scale, 256 * KiB, seed),
           scale.iodepth)


def _build_seq_read(scale: PerfScale, seed: int):
    sim, volume, devices = _fresh_array(scale, seed)
    _prime(sim, volume, scale, seed)
    return sim, volume, devices, _read_bios(volume, scale, 64 * KiB)


def _build_degraded_read(scale: PerfScale, seed: int):
    sim, volume, devices = _fresh_array(scale, seed)
    _prime(sim, volume, scale, seed)
    volume.fail_device(1)
    return sim, volume, devices, _read_bios(volume, scale, 64 * KiB)


def _build_scrub_overhead(scale: PerfScale, seed: int):
    from ..raizn.maintenance import scrub_process

    sim, volume, devices = _fresh_array(scale, seed)
    _prime(sim, volume, scale, seed)
    # Deterministic sprinkling of latent (UNC) errors so the scrub and
    # the foreground reads both exercise the read-repair path.
    su = scale.stripe_unit_bytes
    for zone in range(scale.zones_used):
        device = devices[(zone + 2) % scale.num_devices]
        device.mark_bad(zone * volume.phys_zone_size + (zone % 4) * su, su)
    sim.process(scrub_process(sim, volume))
    return sim, volume, devices, _read_bios(volume, scale, 64 * KiB)


def _paired_tracing_overhead(scale: PerfScale, seed: int,
                             repeats: int) -> float:
    """Tracing tax, measured as interleaved best-of-N pairs.

    Timing noise on a shared machine easily exceeds the few-percent
    effect being measured, and it drifts over seconds — so comparing a
    ``seq_write`` timed early in the benchmark against a
    ``tracing_overhead`` timed much later mostly measures the machine.
    Two countermeasures: alternate fresh builds of the two scenarios
    and compare their per-scenario *minima* (the least
    noise-contaminated estimate of each true cost), and time CPU
    seconds (``time.process_time``) rather than wall seconds, which is
    insensitive to the scheduler preempting the benchmark entirely.
    """
    best = {"seq_write": float("inf"), "tracing_overhead": float("inf")}
    for _ in range(max(3, repeats)):
        for name in best:
            sim, volume, devices, bios = _SCENARIOS[name](scale, seed)
            start = time.process_time()
            _drive(sim, volume, bios, scale.iodepth)
            cpu = time.process_time() - start
            if cpu < best[name]:
                best[name] = cpu
    return ((best["tracing_overhead"] - best["seq_write"])
            / best["seq_write"] * 100.0)


def _build_tracing_overhead(scale: PerfScale, seed: int):
    """``seq_write`` with span tracing on: same bios, same seed, same
    geometry — only ``config.tracing`` differs, so the digest must match
    ``seq_write`` exactly and the wall-clock delta is pure tracer cost."""
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=scale.num_zones,
                         zone_capacity=scale.zone_capacity, seed=seed + i)
               for i in range(scale.num_devices)]
    config = dataclasses.replace(scale.config(), tracing=True)
    volume = RaiznVolume.create(sim, devices, config, array_uuid=BENCH_UUID)
    return sim, volume, devices, _seq_write_bios(volume, scale, 64 * KiB,
                                                 seed)


def _build_tail_latency(scale: PerfScale, seed: int):
    """Hedged-read path under a gray failure: protection on, EWMAs
    primed by a clean read pass, then one device degraded 3x with
    intermittent 5 ms stalls — the read rate includes hedge timers,
    reconstruction races, and health-score bookkeeping."""
    from ..faults.failslow import SlowDeviceSpec, SlowPlan

    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=scale.num_zones,
                         zone_capacity=scale.zone_capacity, seed=seed + i)
               for i in range(scale.num_devices)]
    config = RaiznConfig(num_data=scale.num_devices - 1,
                         stripe_unit_bytes=scale.stripe_unit_bytes,
                         failslow_protection=True)
    volume = RaiznVolume.create(sim, devices, config, array_uuid=BENCH_UUID)
    _prime(sim, volume, scale, seed)
    _drive(sim, volume, _read_bios(volume, scale, 64 * KiB), scale.iodepth)
    plan = SlowPlan(seed=seed + 1, specs=[
        SlowDeviceSpec(device_index=1, degrade_factor=3.0,
                       stall_probability=0.1, stall_seconds=5e-3)])
    plan.arm(devices)
    return sim, volume, devices, _read_bios(volume, scale, 64 * KiB)


_SCENARIOS = {
    "seq_write": _build_seq_write,
    "multizone_write": _build_multizone_write,
    "oltp_flush": _build_oltp,
    "seq_read": _build_seq_read,
    "degraded_read": _build_degraded_read,
    "scrub_overhead": _build_scrub_overhead,
    "tail_latency": _build_tail_latency,
    "tracing_overhead": _build_tracing_overhead,
}


# -- entry points ---------------------------------------------------------------


def _run_scenario_job(packed: Tuple[str, bool, int, int]) -> ScenarioResult:
    """Module-level trampoline so worker processes can unpickle the call."""
    name, fast, seed, repeats = packed
    return _run_scenario(name, FAST_SCALE if fast else FULL_SCALE, seed,
                         repeats)


def run_datapath_bench(fast: bool = False, seed: int = 20230403,
                       only: Optional[List[str]] = None,
                       repeats: int = 1, jobs: int = 1,
                       paired_tracing: bool = True) -> PerfReport:
    """Run the macro-benchmark; returns per-scenario rates and a digest.

    ``jobs > 1`` fans the scenarios out over worker processes.  Each
    scenario is a self-contained fixed-seed simulation, so parallelism
    cannot change any digest; results are merged back in ``SCENARIO_NAMES``
    order regardless of completion order, making the report byte-for-byte
    identical to a sequential run apart from wall times (which then
    measure contended CPUs — use ``jobs=1`` for committed numbers).
    """
    scale = FAST_SCALE if fast else FULL_SCALE
    names = [n for n in SCENARIO_NAMES if only is None or n in only]
    if jobs > 1 and len(names) > 1:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(names))) as pool:
            # Results are collected per-scenario and merged BY NAME, never
            # by completion order: a worker finishing out of order, dying,
            # or answering for the wrong slot cannot silently drop or
            # shuffle a scenario in the merged report (a dropped scenario
            # used to sail through ``--check`` because only scenarios
            # present in the report were compared).
            handles = [(name, pool.apply_async(
                _run_scenario_job, ((name, fast, seed, repeats),)))
                for name in names]
            collected: Dict[str, ScenarioResult] = {}
            for name, handle in handles:
                result = handle.get()
                if result.name != name:
                    raise AssertionError(
                        f"worker answered for scenario {result.name!r} "
                        f"in the {name!r} slot")
                if name in collected:
                    raise AssertionError(f"duplicate result for {name!r}")
                collected[name] = result
        lost = [name for name in names if name not in collected]
        if lost:
            raise AssertionError(f"worker results lost for {lost}")
        results = [collected[name] for name in names]
    else:
        results = [_run_scenario(name, scale, seed, repeats)
                   for name in names]
    by_name = {r.name: r for r in results}
    tracing_pct: Optional[float] = None
    if "seq_write" in by_name and "tracing_overhead" in by_name:
        base = by_name["seq_write"]
        traced = by_name["tracing_overhead"]
        if traced.digest != base.digest:
            raise AssertionError(
                "tracing is not inert: traced seq_write digest "
                f"{traced.digest[:16]} != untraced {base.digest[:16]}")
        if paired_tracing:
            tracing_pct = _paired_tracing_overhead(scale, seed, repeats)
    combined = hashlib.sha256()
    for result in results:
        combined.update(result.digest.encode())
    write_bytes = sum(r.simulated_bytes for r in results
                      if r.name in WRITE_PATH_SCENARIOS)
    write_wall = sum(r.wall_seconds for r in results
                     if r.name in WRITE_PATH_SCENARIOS)
    return PerfReport(
        scenarios=results,
        digest=combined.hexdigest(),
        write_path_mib_per_wall_second=(
            (write_bytes / MiB) / write_wall if write_wall else 0.0),
        total_wall_seconds=sum(r.wall_seconds for r in results),
        tracing_overhead_pct=tracing_pct,
    )


def format_report(report: PerfReport) -> str:
    lines = [f"{'scenario':<18}{'sim MiB':>9}{'wall s':>9}{'MiB/wall-s':>12}"]
    for result in report.scenarios:
        lines.append(
            f"{result.name:<18}{result.simulated_bytes / MiB:>9.1f}"
            f"{result.wall_seconds:>9.3f}"
            f"{result.mib_per_wall_second:>12.1f}")
    lines.append(f"write-path macro: "
                 f"{report.write_path_mib_per_wall_second:.1f} MiB/wall-s")
    if report.tracing_overhead_pct is not None:
        lines.append(f"tracing overhead: {report.tracing_overhead_pct:+.2f}% "
                     "cpu, paired best-of-N (budget < 3% on idle machine)")
    lines.append(f"digest: {report.digest}")
    return "\n".join(lines)


def check_digests(report: PerfReport, reference_path: str,
                  expected_names: Optional[Sequence[str]] = None) -> List[str]:
    """Compare the report's digests against a committed report JSON.

    Returns a list of human-readable mismatch descriptions (empty when
    every scenario digest present in both reports agrees).  Wall times
    and rates are machine-dependent and deliberately not compared.

    ``expected_names`` lists the scenarios the run was asked to produce
    (defaults to every scenario in the reference): any of them present in
    the reference but absent from the report is itself a mismatch.  A
    dropped worker result must fail the check loudly, not shrink the
    comparison set.
    """
    import json

    with open(reference_path) as fh:
        reference = json.load(fh)
    if "scenarios" not in reference and "current" in reference:
        # BENCH_datapath.json nests the authoritative report under
        # ``current``; accept both that shape and a raw ``--json`` report.
        reference = reference["current"]
    ref_digests = {s["name"]: s["digest"]
                   for s in reference.get("scenarios", [])}
    if not ref_digests:
        # An empty comparison set must never read as a pass.
        return [f"{reference_path}: reference contains no scenario digests"]
    problems = []
    for result in report.scenarios:
        expected = ref_digests.get(result.name)
        if expected is None:
            continue
        if result.digest != expected:
            problems.append(
                f"{result.name}: digest {result.digest[:16]}... != "
                f"committed {expected[:16]}...")
    ran = {result.name for result in report.scenarios}
    if expected_names is None:
        expected_names = list(ref_digests)
    for name in expected_names:
        if name in ref_digests and name not in ran:
            problems.append(
                f"{name}: missing from report (reference digest "
                f"{ref_digests[name][:16]}...)")
    return problems


def main(argv: Optional[List[str]] = None) -> None:
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        default=bool(os.environ.get("RAIZN_PERF_FAST")))
    parser.add_argument("--only", action="append", choices=SCENARIO_NAMES)
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N wall-clock measurement (default 3)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenarios in N worker processes "
                        "(deterministic merge; wall times then measure "
                        "contended CPUs)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: single repeat, skip the "
                        "paired tracing-overhead measurement (digests are "
                        "unaffected)")
    parser.add_argument("--check", metavar="REFERENCE_JSON",
                        help="compare scenario digests against a committed "
                        "report (e.g. BENCH_datapath.json); exit 1 on "
                        "mismatch")
    parser.add_argument("--profile", metavar="PSTATS_PATH",
                        help="run under cProfile and dump pstats data to "
                        "PSTATS_PATH")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the report as JSON to PATH")
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else args.repeat
    kwargs = dict(fast=args.fast, only=args.only, repeats=repeats,
                  jobs=args.jobs, paired_tracing=not args.quick)
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        report = run_datapath_bench(**kwargs)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile} "
              "(inspect with `python -m pstats`)")
    else:
        report = run_datapath_bench(**kwargs)
    print(format_report(report))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
            fh.write("\n")
    if args.check:
        problems = check_digests(report, args.check,
                                 expected_names=args.only)
        if problems:
            for problem in problems:
                print(f"DIGEST MISMATCH: {problem}")
            raise SystemExit(1)
        print(f"digests match {args.check}")


if __name__ == "__main__":  # pragma: no cover
    main()
