"""Figure 11: read performance with one failed device (paper §6.2).

Same parameters as the Figure 9 read workloads, except the array is
primed and then "the first device in the array was disabled and removed
without replacement".  Degraded writes carry no penalty (missing stripe
units are simply omitted), so only sequential and random reads are
reported, matching the paper.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim import Simulator
from ..units import KiB, MiB
from .arrays import DEFAULT, ArrayScale, make_mdraid, make_raizn
from .microbench import (
    MicrobenchPoint,
    _default_per_job,
    _job_geometry,
    _run_workload,
)


def run_degraded(kind: str, workload: str, block_size: int,
                 scale: ArrayScale = DEFAULT,
                 seed: int = 0) -> MicrobenchPoint:
    """One cell of Figure 11: prime, fail device 0, measure reads."""
    if workload not in ("read", "randread"):
        raise ValueError("degraded benchmark covers read workloads only")
    sim = Simulator()
    if kind == "raizn":
        volume, _devices = make_raizn(sim, scale, seed=seed)
    else:
        volume, _devices = make_mdraid(sim, scale, seed=seed)
    per_job = _default_per_job(volume, block_size)
    _align, _jobs, region, read_size = _job_geometry(volume, block_size,
                                                     per_job)
    prime_size = min(-(-read_size // MiB) * MiB, region)
    _run_workload(sim, volume, kind, "write", 1 * MiB, prime_size, seed)
    volume.fail_device(0)
    result = _run_workload(sim, volume, kind, workload, block_size,
                           per_job, seed)
    return MicrobenchPoint(
        system=f"{kind}/degraded", workload=workload, block_size=block_size,
        throughput_mib_s=result.throughput_mib_s,
        median_latency=result.latency.median,
        p999_latency=result.latency.p999)


def degraded_sweep(block_sizes: Sequence[int] = (4 * KiB, 64 * KiB,
                                                 256 * KiB, 1 * MiB),
                   scale: ArrayScale = DEFAULT,
                   seed: int = 0) -> List[MicrobenchPoint]:
    """Figure 11: both systems, both read workloads, block-size sweep."""
    points = []
    for kind in ("mdraid", "raizn"):
        for workload in ("read", "randread"):
            for block_size in block_sizes:
                points.append(run_degraded(kind, workload, block_size,
                                           scale=scale, seed=seed))
    return points
