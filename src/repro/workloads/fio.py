"""fio-style workload driver (paper §6.1 methodology).

Reproduces the benchmark structure of the paper's microbenchmarks: jobs ×
iodepth asynchronous IO against any volume exposing ``submit(bio)`` — a
raw simulated device, a RAIZN volume, or an mdraid volume.  Sequential
jobs write/read disjoint regions starting at different offsets; random
read jobs sample a primed region, matching the fio configurations in
§6.1 (8 jobs × QD64 sequential, 1 job × QD256 random).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator, List, Optional, Tuple

from ..block.bio import Bio
from ..errors import ReproError
from ..sim import (
    LatencyStats,
    Resource,
    Simulator,
    ThroughputSeries,
    simulation_gc,
)
from ..units import MiB


@dataclasses.dataclass
class FioJobSpec:
    """One fio job file, reduced to the knobs the paper sweeps."""

    #: 'write', 'read', 'randread', or 'randwrite'.
    rw: str
    #: Block size in bytes.
    block_size: int
    #: Outstanding IOs per job.
    iodepth: int = 1
    #: Number of concurrent jobs.
    numjobs: int = 1
    #: Bytes transferred per job.
    size_per_job: int = 8 * MiB
    #: Region of the volume the workload targets: (start, length).
    #: Sequential jobs carve it into per-job sub-regions; random jobs
    #: sample it uniformly.
    region: Optional[Tuple[int, int]] = None
    #: Alignment for per-job sub-regions.  On a zoned volume, sequential
    #: write jobs must start at a zone boundary, so pass the logical zone
    #: capacity here.
    align: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rw not in ("write", "read", "randread", "randwrite"):
            raise ReproError(f"unknown rw mode: {self.rw}")
        if self.block_size <= 0 or self.iodepth < 1 or self.numjobs < 1:
            raise ReproError("invalid fio job parameters")


@dataclasses.dataclass
class FioResult:
    """Aggregated outcome of one fio run."""

    spec: FioJobSpec
    total_bytes: int
    elapsed: float
    latency: LatencyStats
    series: ThroughputSeries

    @property
    def throughput_mib_s(self) -> float:
        return self.total_bytes / self.elapsed / MiB if self.elapsed else 0.0

    @property
    def iops(self) -> float:
        return self.latency.count / self.elapsed if self.elapsed else 0.0


def run_fio(sim: Simulator, volume, spec: FioJobSpec,
            payload: Optional[bytes] = None) -> FioResult:
    """Run one fio job spec to completion; drains the event loop."""
    start = sim.now
    latency = LatencyStats()
    series = ThroughputSeries(bucket_seconds=1.0)
    region = spec.region or (0, volume.capacity)
    jobs = [
        sim.process(_job(sim, volume, spec, job_index, region, latency,
                         series, payload))
        for job_index in range(spec.numjobs)
    ]
    with simulation_gc():
        sim.run()
    for job in jobs:
        if not job.ok:
            raise job.value
    total = sum(job.value for job in jobs)
    return FioResult(spec=spec, total_bytes=total, elapsed=sim.now - start,
                     latency=latency, series=series)


def _job(sim: Simulator, volume, spec: FioJobSpec, job_index: int,
         region: Tuple[int, int], latency: LatencyStats,
         series: ThroughputSeries, payload: Optional[bytes]):
    """One fio job: issue offsets in order, keeping ``iodepth`` in flight."""
    window = Resource(sim, spec.iodepth)
    failures: List[BaseException] = []
    completions = []
    data = payload or _default_payload(spec.block_size, spec.seed + job_index)
    moved = 0
    for offset in _offsets(spec, job_index, region):
        yield window.request()
        if spec.rw in ("write", "randwrite"):
            bio = Bio.write(offset, data)
        else:
            bio = Bio.read(offset, spec.block_size)
        event = volume.submit(bio)
        event.add_callback(_completion_cb(window, latency, series, failures))
        completions.append(event)
        moved += spec.block_size
        if failures:
            raise failures[0]
    for event in completions:
        if not event.triggered:
            yield event
    if failures:
        raise failures[0]
    return moved


def _completion_cb(window: Resource, latency: LatencyStats,
                   series: ThroughputSeries, failures: List[BaseException]):
    def on_done(event) -> None:
        window.release()
        if not event.ok:
            failures.append(event.value)
            return
        bio = event.value
        latency.add(bio.latency)
        series.record(bio.complete_time, bio.length)
    return on_done


def _offsets(spec: FioJobSpec, job_index: int,
             region: Tuple[int, int]) -> Iterator[int]:
    region_start, region_len = region
    count = spec.size_per_job // spec.block_size
    if spec.rw in ("write", "read"):
        # Disjoint per-job sub-regions, "starting at different offsets".
        per_job = region_len // spec.numjobs
        if spec.align:
            per_job -= per_job % spec.align
        base = region_start + job_index * per_job
        if spec.size_per_job > per_job:
            raise ReproError(
                f"job size {spec.size_per_job} exceeds per-job region "
                f"{per_job}")
        for i in range(count):
            yield base + i * spec.block_size
    else:
        rng = random.Random(spec.seed * 1000003 + job_index)
        slots = region_len // spec.block_size
        if slots == 0:
            raise ReproError("region smaller than one block")
        for _ in range(count):
            yield region_start + rng.randrange(slots) * spec.block_size


def _default_payload(block_size: int, seed: int) -> bytes:
    rng = random.Random(seed)
    return rng.randbytes(block_size)


def prime_volume(sim: Simulator, volume, nbytes: int,
                 block_size: int = 1 * MiB, numjobs: int = 1,
                 region_start: int = 0) -> FioResult:
    """Sequentially fill ``nbytes`` of the volume (the priming phase)."""
    spec = FioJobSpec(rw="write", block_size=block_size, iodepth=8,
                      numjobs=numjobs, size_per_job=nbytes // numjobs,
                      region=(region_start, nbytes),
                      align=getattr(volume, "zone_capacity", None))
    return run_fio(sim, volume, spec)
