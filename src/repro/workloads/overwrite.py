"""The full-device overwrite benchmark of Figure 10 (Observation 3).

Phase 1: five threads concurrently write the entire array capacity, each
covering a disjoint 20% of the address space (0→20%, 20%→40%, ...), which
interleaves five write streams into the conventional SSDs' erase blocks.
Phase 2: a single thread sequentially overwrites the entire address
space.  Once the conventional devices exhaust their overprovisioned
blocks, on-device garbage collection must copy the ~80%-valid erase
blocks, collapsing mdraid's throughput; the valid ratio falls as the
overwrite proceeds, so throughput recovers near the 80% mark (point D).

RAIZN has no device-level GC; the host resets each logical zone before
rewriting it, so throughput stays flat.

Throughput and latency are sampled once per simulated second, exactly as
the paper plots them.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Tuple

from ..block.bio import Bio
from ..sim import (
    LatencyStats,
    Resource,
    Simulator,
    ThroughputSeries,
    simulation_gc,
)


@dataclasses.dataclass
class OverwriteResult:
    """Timeseries outcome of the two-phase overwrite benchmark."""

    phase2_start: float
    series: ThroughputSeries
    latency_series: List[Tuple[float, float]]  # (second, mean latency s)
    phase1_latency: LatencyStats
    phase2_latency: LatencyStats

    def throughput_series(self) -> List[Tuple[float, float]]:
        return self.series.series()


def run_overwrite(sim: Simulator, volume, block_size: int = 64 * 1024,
                  iodepth: int = 8, threads: int = 5,
                  zoned: bool = False, seed: int = 0,
                  bucket_seconds: float = 1.0) -> OverwriteResult:
    """Run the two-phase overwrite benchmark; drains the event loop.

    ``zoned`` selects the ZNS-legal overwrite: each logical zone is reset
    before being rewritten (phase 2), as any ZNS-aware application must.
    """
    series = ThroughputSeries(bucket_seconds=bucket_seconds)
    latency_buckets = {}
    phase1_latency = LatencyStats()
    phase2_latency = LatencyStats()

    def record(bio, stats: LatencyStats) -> None:
        series.record(bio.complete_time, bio.length)
        stats.add(bio.latency)
        bucket = int(bio.complete_time / bucket_seconds)
        total, count = latency_buckets.get(bucket, (0.0, 0))
        latency_buckets[bucket] = (total + bio.latency, count + 1)

    capacity = volume.capacity
    align = getattr(volume, "zone_capacity", block_size) if zoned \
        else block_size
    share = capacity // threads
    share -= share % align
    usable = share * threads
    # Phase 1: `threads` concurrent writers over disjoint 20% shares.
    writers = [
        sim.process(_writer(sim, volume, t * share, share, block_size,
                            iodepth, record, phase1_latency, zoned,
                            seed + t))
        for t in range(threads)
    ]
    with simulation_gc():
        sim.run()
    for writer in writers:
        if not writer.ok:
            raise writer.value
    phase2_start = sim.now
    # Phase 2: one thread overwrites the full address space.
    writer = sim.process(_writer(sim, volume, 0, usable, block_size,
                                 iodepth, record, phase2_latency, zoned,
                                 seed + 99))
    with simulation_gc():
        sim.run()
    if not writer.ok:
        raise writer.value
    latency_series = [(b * bucket_seconds, total / count)
                      for b, (total, count) in sorted(latency_buckets.items())]
    return OverwriteResult(phase2_start=phase2_start, series=series,
                           latency_series=latency_series,
                           phase1_latency=phase1_latency,
                           phase2_latency=phase2_latency)


def _writer(sim: Simulator, volume, start: int, length: int,
            block_size: int, iodepth: int, record, stats: LatencyStats,
            zoned: bool, seed: int):
    """Sequentially (re)write ``[start, start+length)``."""
    window = Resource(sim, iodepth)
    rng = random.Random(seed)
    payload = rng.randbytes(block_size)
    failures: List[BaseException] = []
    pending = []

    def on_done(event) -> None:
        window.release()
        if event.ok:
            record(event.value, stats)
        else:
            failures.append(event.value)

    zone_cap = getattr(volume, "zone_capacity", None) if zoned else None
    position = start
    while position < start + length:
        if zone_cap is not None and position % zone_cap == 0:
            # ZNS-legal overwrite: reset the zone before rewriting it,
            # after draining writes so the reset orders behind them.
            for event in pending:
                if not event.triggered:
                    yield event
            pending.clear()
            info = volume.zone_info(position // zone_cap)
            if info.write_pointer > info.start:
                yield volume.submit(Bio.zone_reset(position))
        yield window.request()
        event = volume.submit(Bio.write(position, payload))
        event.add_callback(on_done)
        pending.append(event)
        if failures:
            raise failures[0]
        position += block_size
    for event in pending:
        if not event.triggered:
            yield event
    if failures:
        raise failures[0]
    return length
