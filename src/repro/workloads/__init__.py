"""Workload drivers: fio-style jobs and the overwrite benchmark."""

from .fio import FioJobSpec, FioResult, prime_volume, run_fio
from .overwrite import OverwriteResult, run_overwrite

__all__ = [
    "FioJobSpec",
    "FioResult",
    "prime_volume",
    "run_fio",
    "OverwriteResult",
    "run_overwrite",
]
