"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` works where PEP 517 editable
builds are available; this shim lets `python setup.py develop` work too.
"""
from setuptools import setup

setup()
